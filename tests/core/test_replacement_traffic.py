"""Focused tests for replacement (eviction) traffic.

The policy-performance gap in the paper comes down to what happens when
a line leaves the processor caches: S-COMA lines land in the local page
cache, LA-NUMA lines must go back to the remote home.
"""

import pytest

from repro.core.directory import DirState
from repro.sim.invariants import check_machine

from tests.conftest import Harness


def overflow_l2(h, cpu, home, start_skip, count=None):
    """Read enough distinct lines to evict everything previously
    cached by ``cpu``."""
    cfg = h.machine.config
    lines = count if count is not None else cfg.l2.num_lines + 4
    pages_needed = -(-lines // cfg.lines_per_page)
    done = 0
    skip = start_skip
    while done < lines:
        page = h.page_homed_at(home, skip=skip)
        for lip in range(cfg.lines_per_page):
            h.read(cpu, h.vaddr(page, lip))
            done += 1
            if done >= lines:
                break
        skip += 1


class TestScomaReplacement:
    def test_dirty_eviction_stays_local(self, harness):
        h = harness
        cpu = h.cpu_on_node(0)
        page = h.page_homed_at(1)
        h.write(cpu, h.vaddr(page, 0))
        wbr_before = h.node(0).stats.writebacks_remote
        home_writes_before = h.node(1).memory.writes
        overflow_l2(h, cpu, home=1, start_skip=1)
        # The dirty line went to the local page cache, not to the home.
        assert h.node(0).stats.writebacks_remote == wbr_before
        assert h.node(0).memory.writes > 0
        # Ownership is retained in the page cache: the tag is still E.
        from repro.core.finegrain import Tag
        assert h.entry_at(0, page).tags.get(0) == Tag.EXCLUSIVE
        assert h.dir_line(page, 0).owner == 0
        assert check_machine(h.machine) == []

    def test_reread_after_eviction_hits_page_cache(self, harness):
        h = harness
        cpu = h.cpu_on_node(0)
        page = h.page_homed_at(1)
        h.write(cpu, h.vaddr(page, 0))
        overflow_l2(h, cpu, home=1, start_skip=1)
        rm_before = h.node(0).stats.remote_misses
        latency = h.read(cpu, h.vaddr(page, 0))
        assert h.node(0).stats.remote_misses == rm_before
        assert latency <= 100  # local page-cache service


class TestLanumaReplacement:
    def test_dirty_eviction_returns_ownership_to_home(self):
        h = Harness(policy="lanuma")
        cpu = h.cpu_on_node(0)
        page = h.page_homed_at(1)
        h.write(cpu, h.vaddr(page, 0))   # node 0 owns the line, dirty
        from repro.interconnect.messages import MessageKind
        overflow_l2(h, cpu, home=1, start_skip=1)
        # The dirty line was written back; the directory reverted.
        assert h.dir_line(page, 0).state == DirState.HOME_EXCL
        assert h.node(0).msglog.get(MessageKind.WRITEBACK) >= 1
        assert check_machine(h.machine) == []

    def test_reread_after_eviction_goes_remote(self):
        h = Harness(policy="lanuma")
        cpu = h.cpu_on_node(0)
        page = h.page_homed_at(1)
        h.write(cpu, h.vaddr(page, 0))
        overflow_l2(h, cpu, home=1, start_skip=1)
        rm_before = h.node(0).stats.remote_misses
        latency = h.read(cpu, h.vaddr(page, 0))
        assert h.node(0).stats.remote_misses == rm_before + 1
        assert latency > 500  # full remote fetch

    def test_sibling_keeps_line_alive(self):
        """If a sibling CPU still caches the line, eviction on one CPU
        must not revert ownership to the home."""
        h = Harness(policy="lanuma")
        cpu0 = h.cpu_on_node(0, 0)
        cpu1 = h.cpu_on_node(0, 1)
        page = h.page_homed_at(1)
        h.write(cpu0, h.vaddr(page, 0))
        h.read(cpu1, h.vaddr(page, 0))       # sibling snarfs a copy
        overflow_l2(h, cpu0, home=1, start_skip=1)
        # cpu1 still holds it; the node must still be listed.
        dl = h.dir_line(page, 0)
        assert (dl.state == DirState.SHARED and 0 in dl.sharers) or \
               (dl.state == DirState.CLIENT_EXCL and dl.owner == 0)
        assert check_machine(h.machine) == []


class TestDirtySiblingShare:
    def test_lanuma_read_snarf_writes_back_home(self):
        h = Harness(policy="lanuma")
        cpu0 = h.cpu_on_node(0, 0)
        cpu1 = h.cpu_on_node(0, 1)
        page = h.page_homed_at(1)
        h.write(cpu0, h.vaddr(page, 0))      # dirty in cpu0's cache
        wbr = h.node(0).stats.writebacks_remote
        h.read(cpu1, h.vaddr(page, 0))       # sibling read
        assert h.node(0).stats.writebacks_remote == wbr + 1
        dl = h.dir_line(page, 0)
        assert dl.state == DirState.SHARED
        assert dl.sharers == {0}
        assert check_machine(h.machine) == []

    def test_scoma_read_snarf_stays_local(self, harness):
        h = harness
        cpu0 = h.cpu_on_node(0, 0)
        cpu1 = h.cpu_on_node(0, 1)
        page = h.page_homed_at(1)
        h.write(cpu0, h.vaddr(page, 0))
        wbr = h.node(0).stats.writebacks_remote
        h.read(cpu1, h.vaddr(page, 0))
        assert h.node(0).stats.writebacks_remote == wbr
        assert h.dir_line(page, 0).owner == 0  # node still owns it
        assert check_machine(h.machine) == []
