"""Protocol-level tests for the coherence controller.

These drive crafted references through a real 4-node machine and check
the resulting directory, fine-grain tag, and cache states after each
transaction type the paper's Table 1 enumerates.
"""

import pytest

from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.mem.cache import LineState
from repro.sim.invariants import check_machine

from tests.conftest import Harness


def coherent(h):
    return check_machine(h.machine) == []


class TestScomaClientReads:
    def test_cold_read_becomes_shared(self, harness):
        h = harness
        page = h.page_homed_at(1)
        client = h.cpu_on_node(0)
        h.read(client, h.vaddr(page, 2))
        entry = h.entry_at(0, page)
        assert entry.tags.get(2) == Tag.SHARED
        dl = h.dir_line(page, 2)
        assert dl.state == DirState.SHARED
        assert dl.sharers == {0}
        # Home tag downgraded from Exclusive to Shared.
        assert h.entry_at(1, page).tags.get(2) == Tag.SHARED
        assert coherent(h)

    def test_second_read_hits_page_cache_locally(self, harness):
        h = harness
        page = h.page_homed_at(1)
        c0 = h.cpu_on_node(0, 0)
        c1 = h.cpu_on_node(0, 1)
        h.read(c0, h.vaddr(page, 2))
        before = h.node(0).stats.remote_misses
        # Sibling CPU misses but the line is in the local page cache...
        latency = h.read(c1, h.vaddr(page, 2))
        assert h.node(0).stats.remote_misses == before
        assert latency < 100

    def test_remote_miss_counted(self, harness):
        h = harness
        page = h.page_homed_at(1)
        h.read(h.cpu_on_node(0), h.vaddr(page, 2))
        assert h.node(0).stats.remote_misses >= 1


class TestWrites:
    def test_write_takes_exclusive_ownership(self, harness):
        h = harness
        page = h.page_homed_at(1)
        h.write(h.cpu_on_node(0), h.vaddr(page, 3))
        entry = h.entry_at(0, page)
        assert entry.tags.get(3) == Tag.EXCLUSIVE
        dl = h.dir_line(page, 3)
        assert dl.state == DirState.CLIENT_EXCL
        assert dl.owner == 0
        assert h.entry_at(1, page).tags.get(3) == Tag.INVALID
        assert coherent(h)

    def test_write_invalidates_other_sharers(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 3)
        h.read(h.cpu_on_node(0), line)
        h.read(h.cpu_on_node(2), line)
        h.read(h.cpu_on_node(3), line)
        h.write(h.cpu_on_node(0), line)
        assert h.entry_at(2, page).tags.get(3) == Tag.INVALID
        assert h.entry_at(3, page).tags.get(3) == Tag.INVALID
        assert h.node(2).stats.invalidations_received == 1
        assert h.node(3).stats.invalidations_received == 1
        assert h.dir_line(page, 3).owner == 0
        assert coherent(h)

    def test_upgrade_costs_more_with_more_sharers(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line_a = h.vaddr(page, 0)
        line_b = h.vaddr(page, 1)
        h.read(h.cpu_on_node(0), line_a)
        t_zero_sharers = h.write(h.cpu_on_node(0), line_a)
        h.read(h.cpu_on_node(0), line_b)
        h.read(h.cpu_on_node(2), line_b)
        h.read(h.cpu_on_node(3), line_b)
        t_two_sharers = h.write(h.cpu_on_node(0), line_b)
        assert t_two_sharers > t_zero_sharers + 300

    def test_write_after_exclusive_read_is_silent(self, harness):
        h = harness
        page = h.page_homed_at(0)  # home node itself
        cpu = h.cpu_on_node(0)
        h.read(cpu, h.vaddr(page, 1))   # home read: tag E, CPU E
        latency = h.write(cpu, h.vaddr(page, 1))
        assert latency <= 2  # silent E -> M upgrade


class TestThreeParty:
    def test_read_of_remote_dirty_line(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 4)
        h.write(h.cpu_on_node(2), line)       # node 2 owns dirty
        h.read(h.cpu_on_node(3), line)        # 3-party read
        dl = h.dir_line(page, 4)
        assert dl.state == DirState.SHARED
        assert dl.sharers == {2, 3}
        assert h.entry_at(2, page).tags.get(4) == Tag.SHARED
        assert h.node(2).stats.interventions_received == 1
        # Sharing writeback made home memory valid again.
        assert h.entry_at(1, page).tags.get(4) == Tag.SHARED
        assert coherent(h)

    def test_write_steals_ownership(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 4)
        h.write(h.cpu_on_node(2), line)
        h.write(h.cpu_on_node(3), line)
        dl = h.dir_line(page, 4)
        assert dl.state == DirState.CLIENT_EXCL
        assert dl.owner == 3
        assert h.entry_at(2, page).tags.get(4) == Tag.INVALID
        assert coherent(h)

    def test_3party_costs_more_than_2party(self, harness):
        h = harness
        page = h.page_homed_at(1)
        h.write(h.cpu_on_node(2), h.vaddr(page, 4))
        t3 = h.read(h.cpu_on_node(3), h.vaddr(page, 4))
        t2 = h.read(h.cpu_on_node(3), h.vaddr(page, 5))
        assert t3 > t2 + 200


class TestHomeCpuInteraction:
    def test_home_cpu_read_of_client_owned_line(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 6)
        h.write(h.cpu_on_node(0), line)       # client 0 owns
        h.read(h.cpu_on_node(1), line)        # home CPU reads it back
        dl = h.dir_line(page, 6)
        assert dl.state == DirState.SHARED
        assert dl.sharers == {0}
        assert h.entry_at(1, page).tags.get(6) == Tag.SHARED
        assert coherent(h)

    def test_home_cpu_write_invalidates_clients(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 6)
        h.read(h.cpu_on_node(0), line)
        h.read(h.cpu_on_node(2), line)
        h.write(h.cpu_on_node(1), line)       # home CPU writes
        dl = h.dir_line(page, 6)
        assert dl.state == DirState.HOME_EXCL
        assert h.entry_at(1, page).tags.get(6) == Tag.EXCLUSIVE
        assert h.entry_at(0, page).tags.get(6) == Tag.INVALID
        assert coherent(h)

    def test_client_read_of_home_dirty_line(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 7)
        h.write(h.cpu_on_node(1), line)       # dirty in home CPU cache
        t = h.read(h.cpu_on_node(0), line)
        clean = h.read(h.cpu_on_node(0), h.vaddr(page, 1))
        assert t > clean  # intervention added
        assert coherent(h)


class TestLanuma:
    def test_lanuma_frame_is_imaginary(self, lanuma_harness):
        h = lanuma_harness
        page = h.page_homed_at(1)
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))
        entry = h.entry_at(0, page)
        assert entry.tags is None
        from repro.kernel.frames import is_imaginary
        assert is_imaginary(entry.frame)

    def test_lanuma_capacity_refetch_goes_remote(self, lanuma_harness):
        """The LA-NUMA cost the paper measures: an evicted line must be
        refetched from the remote home, where S-COMA would hit the local
        page cache."""
        h = lanuma_harness
        cfg = h.machine.config
        page = h.page_homed_at(1)
        cpu = h.cpu_on_node(0)
        # Touch enough lines to overflow the 512-byte L2 (16 lines).
        lines = cfg.l2.num_lines + 4
        pages_needed = -(-lines // cfg.lines_per_page)
        addrs = [h.vaddr(h.page_homed_at(1, skip=s), lip)
                 for s in range(pages_needed) for lip in range(cfg.lines_per_page)]
        for a in addrs[:lines]:
            h.read(cpu, a)
        before = h.node(0).stats.remote_misses
        h.read(cpu, addrs[0])  # evicted: must refetch remotely
        assert h.node(0).stats.remote_misses == before + 1

    def test_scoma_capacity_refetch_stays_local(self, harness):
        h = harness
        cfg = h.machine.config
        cpu = h.cpu_on_node(0)
        lines = cfg.l2.num_lines + 4
        pages_needed = -(-lines // cfg.lines_per_page)
        addrs = [h.vaddr(h.page_homed_at(1, skip=s), lip)
                 for s in range(pages_needed) for lip in range(cfg.lines_per_page)]
        for a in addrs[:lines]:
            h.read(cpu, a)
        before = h.node(0).stats.remote_misses
        h.read(cpu, addrs[0])  # evicted from L2 but in the page cache
        assert h.node(0).stats.remote_misses == before

    def test_dirty_eviction_writes_back_to_home(self, lanuma_harness):
        h = lanuma_harness
        cfg = h.machine.config
        cpu = h.cpu_on_node(0)
        page = h.page_homed_at(1)
        target = h.vaddr(page, 0)
        h.write(cpu, target)                 # dirty LA-NUMA line
        lines = cfg.l2.num_lines + 4
        pages_needed = -(-lines // cfg.lines_per_page)
        for s in range(1, pages_needed + 1):
            for lip in range(cfg.lines_per_page):
                h.read(cpu, h.vaddr(h.page_homed_at(1, skip=s), lip))
        assert h.node(0).stats.writebacks_remote >= 1
        # Home owns the line again.
        dl = h.dir_line(page, 0)
        assert dl.state == DirState.HOME_EXCL
        assert coherent(h)


class TestInvalidateStaleSharer:
    def test_invalidation_after_page_out_is_acked(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 2)
        h.read(h.cpu_on_node(0), line)
        # Node 0 pages the frame out; directory still lists it (the
        # flush removes it, so force staleness by re-adding).
        entry = h.entry_at(0, page)
        h.node(0).kernel.page_out_client(entry.frame, h.clock)
        h.dir_line(page, 2).sharers.add(0)  # simulate staleness
        h.write(h.cpu_on_node(2), line)     # triggers inval to node 0
        assert h.dir_line(page, 2).owner == 2


class TestMemoryFirewall:
    def test_wild_write_blocked_and_counted(self, harness):
        from repro.core.controller import WildWriteError
        h = harness
        page = h.page_homed_at(1)
        vaddr = h.vaddr(page, 0)
        h.write(h.cpu_on_node(0), vaddr)
        home_entry = h.entry_at(1, page)
        home_entry.allowed_writers = {0}
        with pytest.raises(WildWriteError):
            h.write(h.cpu_on_node(2), vaddr)
        assert h.node(1).stats.wild_writes_blocked == 1
        # Ownership is unchanged: node 0 still owns the line.
        assert h.dir_line(page, 0).owner == 0

    def test_allowed_writer_unaffected(self, harness):
        h = harness
        page = h.page_homed_at(1)
        vaddr = h.vaddr(page, 0)
        h.write(h.cpu_on_node(0), vaddr)
        h.entry_at(1, page).allowed_writers = {0, 1}
        h.write(h.cpu_on_node(0), h.vaddr(page, 1))
        assert h.node(1).stats.wild_writes_blocked == 0

    def test_reads_pass_the_firewall(self, harness):
        h = harness
        page = h.page_homed_at(1)
        h.write(h.cpu_on_node(0), h.vaddr(page, 0))
        h.entry_at(1, page).allowed_writers = {0}
        h.read(h.cpu_on_node(3), h.vaddr(page, 0))  # must not raise
        assert 3 in h.dir_line(page, 0).sharers


class TestPitGuessPath:
    def test_requests_use_fast_reverse_translation(self, harness):
        h = harness
        page = h.page_homed_at(1)
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))
        before = h.node(1).pit.hash_lookups
        h.read(h.cpu_on_node(0), h.vaddr(page, 1))
        assert h.node(1).pit.hash_lookups == before  # guess was right

    def test_invalidations_use_hash_path(self, harness):
        h = harness
        page = h.page_homed_at(1)
        line = h.vaddr(page, 3)
        h.read(h.cpu_on_node(2), line)
        before = h.node(2).pit.hash_lookups
        h.write(h.cpu_on_node(0), line)  # invalidates node 2
        assert h.node(2).pit.hash_lookups == before + 1
