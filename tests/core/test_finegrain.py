"""Unit tests for the fine-grain access tags."""

from repro.core.finegrain import FineGrainTags, Tag


def test_initial_state():
    tags = FineGrainTags(8)
    assert all(t == Tag.INVALID for t in tags)
    tags = FineGrainTags(8, Tag.EXCLUSIVE)
    assert all(t == Tag.EXCLUSIVE for t in tags)


def test_set_get():
    tags = FineGrainTags(4)
    tags.set(2, Tag.SHARED)
    assert tags.get(2) == Tag.SHARED
    assert tags.get(1) == Tag.INVALID


def test_count():
    tags = FineGrainTags(8)
    tags.set(0, Tag.EXCLUSIVE)
    tags.set(1, Tag.EXCLUSIVE)
    tags.set(2, Tag.TRANSIT)
    assert tags.count(Tag.EXCLUSIVE) == 2
    assert tags.count(Tag.INVALID) == 5
    assert tags.count(Tag.TRANSIT) == 1


def test_lines_in():
    tags = FineGrainTags(6)
    tags.set(1, Tag.SHARED)
    tags.set(4, Tag.SHARED)
    assert tags.lines_in(Tag.SHARED) == [1, 4]


def test_len_and_iter():
    tags = FineGrainTags(12)
    assert len(tags) == 12
    assert len(list(tags)) == 12
