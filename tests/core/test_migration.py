"""Tests for lazy page migration (section 3.5)."""

import pytest

from repro.core.directory import DirState
from repro.core.finegrain import Tag
from repro.sim.invariants import check_machine

from tests.conftest import Harness, protocol_config


def migration_harness(threshold=8):
    cfg = protocol_config(enable_migration=True,
                          migration_threshold=threshold)
    return Harness(policy="scoma", config=cfg)


class TestMigrationMechanics:
    def test_manual_migrate_moves_directory(self):
        h = Harness()
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))
        h.machine.migration.migrate(gpage, 2)
        assert h.machine.dynamic_home_of(gpage) == 2
        assert h.node(2).directory.page(gpage) is not None
        assert h.node(1).directory.page(gpage) is None
        # Static home is unchanged.
        assert h.machine.static_home_of(gpage) == 1

    def test_old_home_becomes_client(self):
        h = Harness()
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        h.read(h.cpu_on_node(1), h.vaddr(page, 0))  # home CPU touches it
        h.machine.migration.migrate(gpage, 2)
        old_entry = h.entry_at(1, page)
        assert old_entry.dynamic_home == 2
        assert old_entry.tags.get(0) == Tag.SHARED
        dl = h.dir_line(page, 0)
        assert dl.state == DirState.SHARED
        assert 1 in dl.sharers

    def test_stale_client_request_is_forwarded_and_updated(self):
        h = Harness()
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        client = h.cpu_on_node(0)
        h.read(client, h.vaddr(page, 0))      # PIT caches home=1
        h.machine.migration.migrate(gpage, 2)
        before = h.node(0).stats.forwarded_requests
        t_forwarded = h.read(client, h.vaddr(page, 1))
        assert h.node(0).stats.forwarded_requests == before + 1
        # The response taught the client the new home.
        assert h.entry_at(0, page).dynamic_home == 2
        t_direct = h.read(client, h.vaddr(page, 2))
        assert t_direct < t_forwarded
        assert check_machine(h.machine) == []

    def test_no_tlb_invalidation_on_migration(self):
        h = Harness()
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        vaddr = h.vaddr(page, 0)
        vpage = vaddr // h.machine.config.page_bytes
        h.read(h.cpu_on_node(0), vaddr)
        h.machine.migration.migrate(gpage, 2)
        # The client's translation survives: lazy migration never
        # touches remote translations.
        assert vpage in h.machine.cpus[h.cpu_on_node(0)].tlb

    def test_client_exclusive_lines_survive_migration(self):
        h = Harness()
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        h.write(h.cpu_on_node(3), h.vaddr(page, 5))
        h.machine.migration.migrate(gpage, 2)
        dl = h.dir_line(page, 5)
        assert dl.state == DirState.CLIENT_EXCL
        assert dl.owner == 3
        # A read through the new home still finds the owner (3-party).
        h.read(h.cpu_on_node(0), h.vaddr(page, 5))
        assert h.dir_line(page, 5).state == DirState.SHARED
        assert check_machine(h.machine) == []

    def test_migrate_to_same_home_is_noop(self):
        h = Harness()
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))
        h.machine.migration.migrate(gpage, 1)
        assert h.machine.migration.migrations == 0


class TestMigrationPolicy:
    def test_hot_requester_attracts_the_home(self):
        h = migration_harness(threshold=8)
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        cpu = h.cpu_on_node(3)
        for lip in range(8):
            h.read(cpu, h.vaddr(page, lip))
        assert h.machine.dynamic_home_of(gpage) == 3
        assert h.node(3).stats.homes_migrated_in == 1
        assert check_machine(h.machine) == []

    def test_balanced_requesters_do_not_migrate(self):
        h = migration_harness(threshold=8)
        page = h.page_homed_at(1)
        gpage = h.gpage(page)
        for lip in range(4):
            h.read(h.cpu_on_node(0), h.vaddr(page, lip))
            h.read(h.cpu_on_node(2), h.vaddr(page, lip + 4))
        assert h.machine.dynamic_home_of(gpage) == 1

    def test_migration_disabled_by_default(self):
        h = Harness()
        page = h.page_homed_at(1)
        for lip in range(8):
            h.read(h.cpu_on_node(3), h.vaddr(page, lip))
        assert h.machine.dynamic_home_of(h.gpage(page)) == 1
