"""Tests for the page-mode policies, both in isolation and end to end."""

import pytest

from repro.core.modes import PageMode
from repro.core.policies import (POLICY_NAMES, DynBidirPolicy, DynFcfsPolicy,
                                 DynLruPolicy, DynUtilPolicy, LanumaPolicy,
                                 ScomaPolicy, make_policy)
from repro.kernel.frames import is_imaginary

from tests.conftest import Harness


def test_make_policy_names():
    for name in POLICY_NAMES:
        assert make_policy(name).name == name


def test_make_policy_unknown():
    with pytest.raises(ValueError):
        make_policy("nope")


def test_policy_classes():
    assert isinstance(make_policy("scoma"), ScomaPolicy)
    assert isinstance(make_policy("scoma-70"), ScomaPolicy)
    assert isinstance(make_policy("lanuma"), LanumaPolicy)
    assert isinstance(make_policy("dyn-fcfs"), DynFcfsPolicy)
    assert isinstance(make_policy("dyn-util"), DynUtilPolicy)
    assert isinstance(make_policy("dyn-lru"), DynLruPolicy)
    assert isinstance(make_policy("dyn-bidir"), DynBidirPolicy)
    assert make_policy("dyn-bidir").promotes


def _capped_harness(policy, cap=2):
    return Harness(policy=policy, page_cache_override=[cap] * 4)


def _fill_page_cache(h, cpu, count, home=1):
    pages = [h.page_homed_at(home, skip=s) for s in range(count)]
    for p in pages:
        h.read(cpu, h.vaddr(p, 0))
    return pages


class TestDynFcfs:
    def test_overflow_allocates_lanuma_without_pageout(self):
        h = _capped_harness("dyn-fcfs")
        cpu = h.cpu_on_node(0)
        pages = _fill_page_cache(h, cpu, 3)
        assert not is_imaginary(h.entry_at(0, pages[0]).frame)
        assert not is_imaginary(h.entry_at(0, pages[1]).frame)
        assert is_imaginary(h.entry_at(0, pages[2]).frame)
        assert h.node(0).stats.client_page_outs == 0

    def test_earlier_pages_keep_scoma_frames(self):
        h = _capped_harness("dyn-fcfs")
        cpu = h.cpu_on_node(0)
        pages = _fill_page_cache(h, cpu, 4)
        h.read(cpu, h.vaddr(pages[0], 1))
        assert not is_imaginary(h.entry_at(0, pages[0]).frame)


class TestDynLru:
    def test_overflow_demotes_lru_page(self):
        h = _capped_harness("dyn-lru")
        cpu = h.cpu_on_node(0)
        pages = _fill_page_cache(h, cpu, 2)
        h.read(cpu, h.vaddr(pages[0], 1))  # refresh page 0; page 1 is LRU
        third = h.page_homed_at(1, skip=2)
        h.read(cpu, h.vaddr(third, 0))
        # Page 1 was demoted; the new page got its S-COMA frame.
        assert h.entry_at(0, pages[1]) is None or \
            is_imaginary(h.entry_at(0, pages[1]).frame)
        assert not is_imaginary(h.entry_at(0, third).frame)
        assert h.node(0).stats.mode_demotions == 1
        assert h.node(0).stats.client_page_outs == 1
        # Re-fault of the demoted page uses a LA-NUMA frame.
        h.read(cpu, h.vaddr(pages[1], 0))
        assert is_imaginary(h.entry_at(0, pages[1]).frame)


class TestDynUtil:
    def test_overflow_demotes_most_invalid_frame(self):
        h = _capped_harness("dyn-util")
        cpu = h.cpu_on_node(0)
        page_a = h.page_homed_at(1, skip=0)
        page_b = h.page_homed_at(1, skip=1)
        # page_a: many lines valid; page_b: single line valid.
        for lip in range(6):
            h.read(cpu, h.vaddr(page_a, lip))
        h.read(cpu, h.vaddr(page_b, 0))
        third = h.page_homed_at(1, skip=2)
        h.read(cpu, h.vaddr(third, 0))
        # page_b had more Invalid tags; it must be the demotion victim.
        assert h.entry_at(0, page_b) is None or \
            is_imaginary(h.entry_at(0, page_b).frame)
        assert not is_imaginary(h.entry_at(0, page_a).frame)


class TestScoma70:
    def test_overflow_pages_out_without_demotion(self):
        h = _capped_harness("scoma-70")
        cpu = h.cpu_on_node(0)
        pages = _fill_page_cache(h, cpu, 3)
        assert h.node(0).stats.client_page_outs == 1
        assert h.node(0).stats.mode_demotions == 0
        # The evicted page re-faults into an S-COMA frame again
        # (evicting another victim), never LA-NUMA.
        h.read(cpu, h.vaddr(pages[0], 0))
        entry = h.entry_at(0, pages[0])
        assert entry is not None and not is_imaginary(entry.frame)


class TestDynBidir:
    def test_refetch_heavy_page_promoted_back(self):
        h = Harness(policy="dyn-bidir", page_cache_override=[1] * 4)
        h.machine.policy.promote_threshold = 4
        cpu = h.cpu_on_node(0)
        page_a = h.page_homed_at(1, skip=0)
        page_b = h.page_homed_at(1, skip=1)
        h.read(cpu, h.vaddr(page_a, 0))     # fills the 1-frame cache
        h.read(cpu, h.vaddr(page_b, 0))     # LRU victim page_a demoted
        h.read(cpu, h.vaddr(page_a, 0))     # re-fault: LA-NUMA now
        assert is_imaginary(h.entry_at(0, page_a).frame)
        # Hammer page_a with cold lines until the promotion threshold.
        for lip in range(1, 7):
            h.read(cpu, h.vaddr(page_a, lip))
        # Promotion unmapped it; the next fault re-maps it S-COMA.
        h.read(cpu, h.vaddr(page_a, 7))
        entry = h.entry_at(0, page_a)
        assert entry is not None and not is_imaginary(entry.frame)
        assert h.node(0).stats.mode_promotions >= 1
