"""Tests for the CC-NUMA extension mode (section 3.2)."""

import pytest

from repro.core.modes import PageMode
from repro.kernel.frames import is_imaginary
from repro.sim.invariants import check_machine

from tests.conftest import Harness, protocol_config


@pytest.fixture
def ccnuma_harness():
    return Harness(policy="ccnuma")


class TestCcnumaMode:
    def test_client_frames_bypass_the_pit(self, ccnuma_harness):
        h = ccnuma_harness
        page = h.page_homed_at(1)
        cpu = h.cpu_on_node(0)
        h.read(cpu, h.vaddr(page, 0))
        lookups_before = (h.node(0).pit.lookups, h.node(1).pit.lookups)
        h.read(cpu, h.vaddr(page, 1))
        # Remote miss serviced, but no PIT lookup was charged anywhere.
        assert (h.node(0).pit.lookups,
                h.node(1).pit.lookups) == lookups_before

    def test_ccnuma_miss_is_faster_than_lanuma(self):
        lat_diffs = []
        for policy in ("ccnuma", "lanuma"):
            h = Harness(policy=policy)
            page = h.page_homed_at(1)
            cpu = h.cpu_on_node(0)
            h.read(cpu, h.vaddr(page, 0))
            lat_diffs.append(h.read(cpu, h.vaddr(page, 1)))
        ccnuma, lanuma = lat_diffs
        lat = protocol_config().latency
        assert lanuma - ccnuma == 2 * lat.pit_access

    def test_frames_are_not_local_memory(self, ccnuma_harness):
        h = ccnuma_harness
        page = h.page_homed_at(1)
        h.read(h.cpu_on_node(0), h.vaddr(page, 0))
        entry = h.entry_at(0, page)
        assert entry.mode == PageMode.CCNUMA
        assert is_imaginary(entry.frame)
        assert not PageMode.CCNUMA.is_real
        assert PageMode.CCNUMA.is_remote_backed

    def test_coherence_holds_under_ccnuma(self, ccnuma_harness):
        h = ccnuma_harness
        page = h.page_homed_at(1)
        for lip in range(4):
            h.read(h.cpu_on_node(0), h.vaddr(page, lip))
            h.write(h.cpu_on_node(2), h.vaddr(page, lip))
            h.read(h.cpu_on_node(3), h.vaddr(page, lip))
        assert check_machine(h.machine) == []

    def test_ccnuma_rejects_migration(self):
        cfg = protocol_config(enable_migration=True)
        with pytest.raises(ValueError, match="migration is impossible"):
            Harness(policy="ccnuma", config=cfg)

    def test_ccnuma_not_allowed_at_home(self):
        from repro.core.pit import PageInformationTable
        pit = PageInformationTable(0, 8)
        with pytest.raises(ValueError):
            pit.install(1, gpage=5, static_home=0, dynamic_home=0,
                        home_frame=1, mode=PageMode.CCNUMA)


class TestDirectoryClientFrames:
    """Section 4.3 mitigation: client frame numbers in the directory."""

    def test_invalidation_uses_fast_path_when_enabled(self):
        cfg = protocol_config(directory_caches_client_frames=True)
        h = Harness(policy="scoma", config=cfg)
        page = h.page_homed_at(1)
        line = h.vaddr(page, 3)
        h.read(h.cpu_on_node(2), line)
        before = h.node(2).pit.hash_lookups
        h.write(h.cpu_on_node(0), line)  # invalidates node 2
        assert h.node(2).pit.hash_lookups == before  # fast path

    def test_invalidation_latency_drops(self):
        def inval_cost(flag):
            cfg = protocol_config(directory_caches_client_frames=flag)
            h = Harness(policy="scoma", config=cfg)
            page = h.page_homed_at(1)
            line = h.vaddr(page, 3)
            h.read(h.cpu_on_node(0), line)
            h.read(h.cpu_on_node(2), line)
            h.read(h.cpu_on_node(3), line)
            return h.write(h.cpu_on_node(0), line)

        lat = protocol_config().latency
        # The critical-path sharer's reverse translation is cheaper.
        assert inval_cost(False) - inval_cost(True) == (lat.pit_hash
                                                        - lat.pit_access)
