"""docs/API.md must stay in sync with the docstrings."""

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_api_reference_is_current():
    generated = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True, text=True, timeout=60, check=True).stdout
    committed = (ROOT / "docs" / "API.md").read_text()
    assert generated == committed, \
        "docs/API.md is stale; run: python tools/gen_api_docs.py > docs/API.md"


def test_api_reference_covers_key_modules():
    text = (ROOT / "docs" / "API.md").read_text()
    for module in ("repro.core.controller", "repro.sim.machine",
                   "repro.kernel.vm", "repro.harness.runner"):
        assert "## `%s`" % module in text
