"""Unit tests for the network model."""

from repro.interconnect.network import Network
from repro.sim.latency import LatencyModel


def test_uncontended_hop_costs_exactly_net_latency():
    lat = LatencyModel()
    net = Network(4, lat)
    assert net.send(0, 1, 1000) == 1000 + lat.net_latency


def test_intra_node_send_is_free():
    net = Network(4, LatencyModel())
    assert net.send(2, 2, 500) == 500
    assert net.messages == 0


def test_ni_injection_serializes():
    lat = LatencyModel()
    net = Network(4, lat)
    a = net.send(0, 1, 0)
    b = net.send(0, 2, 0)  # second injection waits for the first NI slot
    assert b == a + Network.NI_OCCUPANCY


def test_receiving_ni_is_not_charged():
    lat = LatencyModel()
    net = Network(4, lat)
    net.send(0, 1, 0)
    # A send from another node to the same destination is unaffected.
    assert net.send(2, 1, 0) == lat.net_latency


def test_multicast_returns_per_destination_arrivals():
    lat = LatencyModel()
    net = Network(8, lat)
    arrivals = net.multicast(0, [1, 2, 3], 0)
    assert arrivals == [lat.net_latency,
                        lat.net_latency + Network.NI_OCCUPANCY,
                        lat.net_latency + 2 * Network.NI_OCCUPANCY]
    assert net.messages == 3
