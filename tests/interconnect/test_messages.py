"""Unit tests for the message vocabulary and accounting."""

import pytest

from repro.interconnect.messages import Message, MessageKind, MessageLog


def test_message_validation():
    msg = Message(MessageKind.READ_REQ, src_node=0, dst_node=1, gpage=5)
    assert msg.kind == MessageKind.READ_REQ
    with pytest.raises(ValueError):
        Message(MessageKind.ACK, src_node=-1, dst_node=0)


def test_message_log_counts():
    log = MessageLog()
    log.record(MessageKind.READ_REQ)
    log.record(MessageKind.READ_REQ)
    log.record(MessageKind.INVALIDATE, 3)
    assert log.get(MessageKind.READ_REQ) == 2
    assert log.get(MessageKind.INVALIDATE) == 3
    assert log.get(MessageKind.ACK) == 0
    assert log.total() == 5


def test_protocol_traffic_is_logged_end_to_end(harness):
    h = harness
    page = h.page_homed_at(1)
    h.read(h.cpu_on_node(0), h.vaddr(page, 0))
    assert h.node(0).msglog.get(MessageKind.READ_REQ) == 1
    assert h.node(0).msglog.get(MessageKind.PAGE_IN_REQ) == 1
    h.write(h.cpu_on_node(2), h.vaddr(page, 0))
    assert h.node(2).msglog.get(MessageKind.READ_EXCL_REQ) == 1
    assert h.node(1).msglog.get(MessageKind.INVALIDATE) == 1
