"""Tests for the value tap (repro.verify.tracker)."""

import pytest

from repro.obs.events import EventSink, validate_event
from repro.sim.machine import Machine
from repro.verify import ValueTracker, suite_by_name
from repro.verify.litmus import LitmusWorkload

pytestmark = pytest.mark.verify


def _tracked_run(name="mp_scoma"):
    test = suite_by_name()[name]
    machine = Machine(test.build_config(), policy=test.policy)
    sink = EventSink()
    tracker = ValueTracker(machine, sink)
    machine.run(LitmusWorkload(test))
    tracker.detach()
    return machine, sink, tracker


def test_records_every_reference_as_read_or_write_event():
    machine, sink, _tracker = _tracked_run()
    reads = [e for e in sink.events if e["kind"] == "read"]
    writes = [e for e in sink.events if e["kind"] == "write"]
    assert len(reads) == sum(c.stats.reads for c in machine.cpus)
    assert len(writes) == sum(c.stats.writes for c in machine.cpus)
    for event in sink.events:
        validate_event(event)


def test_write_versions_are_unique_and_ordered():
    _machine, sink, tracker = _tracked_run()
    versions = [e["version"] for e in sink.events if e["kind"] == "write"]
    assert versions == sorted(versions)
    assert len(set(versions)) == len(versions)
    assert tracker.version == len(versions)


def test_reads_observe_latest_write_on_a_correct_machine():
    machine, sink, _tracker = _tracked_run()
    latest = {}
    shift = machine._line_shift
    for event in sink.events:
        vline = event["vaddr"] >> shift
        if event["kind"] == "write":
            latest[vline] = event["version"]
        else:
            assert event["value"] == latest.get(vline, 0)


def test_detach_restores_the_class_reference_path():
    test = suite_by_name()["mp_scoma"]
    machine = Machine(test.build_config(), policy=test.policy)
    unwrapped = machine._access
    tracker = ValueTracker(machine, EventSink())
    assert machine._access == tracker._on_access
    tracker.detach()
    assert machine._access == unwrapped
    assert "_access" not in machine.__dict__
    tracker.detach()  # idempotent


def test_tracking_does_not_change_timing_or_stats():
    test = suite_by_name()["sb_scoma"]
    plain = Machine(test.build_config(), policy=test.policy)
    plain.run(LitmusWorkload(test))
    tracked, _sink, _tracker = _tracked_run("sb_scoma")
    assert (tracked.stats.execution_cycles
            == plain.stats.execution_cycles)
    assert tracked.stats.references == plain.stats.references
    assert tracked.stats.remote_misses == plain.stats.remote_misses
