"""CLI surface of the conformance subsystem: ``repro verify`` and
``repro run --check-invariants``."""

import pytest

from repro.harness.cli import main
from repro.verify import apply_mutation

pytestmark = pytest.mark.verify


def test_verify_list_names_every_bundled_test(capsys):
    assert main(["verify", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("mp_scoma", "iriw_lanuma", "migration_race_scoma",
                 "pageout_mp_scoma"):
        assert name in out


def test_verify_suite_passes(capsys):
    assert main(["verify", "--suite", "litmus",
                 "--test", "mp_scoma", "--test", "sb_scoma"]) == 0
    out = capsys.readouterr().out
    assert "litmus suite" in out
    assert "0 failures" in out


def test_verify_default_is_the_suite(capsys):
    assert main(["verify", "--test", "mp_scoma"]) == 0
    assert "litmus suite" in capsys.readouterr().out


def test_verify_fuzz_smoke(capsys):
    assert main(["verify", "--fuzz", "4", "--seed", "0",
                 "--test", "mp_scoma"]) == 0
    out = capsys.readouterr().out
    assert "fuzz: 4 rounds (seed 0), 0 failures" in out
    # --fuzz alone skips the exhaustive suite pass.
    assert "litmus suite" not in out


def test_verify_unknown_test_is_an_error(capsys):
    assert main(["verify", "--test", "nonesuch"]) == 2
    assert "unknown litmus tests: nonesuch" in capsys.readouterr().out


def test_verify_fails_loudly_under_a_mutation(capsys):
    with apply_mutation("skip-client-invalidate"):
        assert main(["verify", "--test", "mp_scoma"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out


def test_run_check_invariants_clean(capsys):
    assert main(["run", "fft", "--preset", "tiny", "--no-cache",
                 "--check-invariants"]) == 0
    out = capsys.readouterr().out
    assert "invariants checked at every barrier" in out
    assert "execution_cycles" in out


def test_run_check_invariants_reports_violations(capsys):
    # A machine that acks invalidations without dropping copies breaks
    # the directory invariants; the CLI must fail loudly, naming them.
    with apply_mutation("skip-client-invalidate"):
        code = main(["run", "fft", "--preset", "tiny", "--no-cache",
                     "--check-invariants"])
    out = capsys.readouterr().out
    assert code == 1
    assert "INVARIANT VIOLATION" in out
