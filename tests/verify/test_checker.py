"""Tests for the SC history checker (repro.verify.checker)."""

import pytest

from repro.verify import check_history

pytestmark = pytest.mark.verify

SHIFT = 5  # 32-byte lines


def _write(seq, vaddr, version, cpu=0, time=0):
    return {"seq": seq, "kind": "write", "cpu": cpu, "vaddr": vaddr,
            "value": version, "version": version, "time": time}


def _read(seq, vaddr, value, cpu=1, time=0):
    return {"seq": seq, "kind": "read", "cpu": cpu, "vaddr": vaddr,
            "value": value, "version": value, "time": time}


def test_empty_and_write_only_histories_pass():
    assert check_history([], SHIFT) == []
    assert check_history([_write(0, 0x100, 1)], SHIFT) == []


def test_read_of_initial_value_passes():
    assert check_history([_read(0, 0x100, 0)], SHIFT) == []


def test_read_of_latest_write_passes():
    events = [_write(0, 0x100, 1), _read(1, 0x100, 1),
              _write(2, 0x100, 2), _read(3, 0x100, 2)]
    assert check_history(events, SHIFT) == []


def test_stale_read_is_flagged():
    events = [_write(0, 0x100, 1), _write(1, 0x100, 2),
              _read(2, 0x100, 1)]
    problems = check_history(events, SHIFT)
    assert len(problems) == 1
    assert "stale read" in problems[0]
    assert "version 1" in problems[0] and "version 2" in problems[0]


def test_locations_are_tracked_per_line_not_per_byte():
    # Two addresses on one 32-byte line share a coherence unit: a write
    # to the first makes version 0 stale for the second.
    events = [_write(0, 0x100, 1), _read(1, 0x11c, 0)]
    assert any("stale read" in p
               for p in check_history(events, SHIFT))
    # ...while a different line is independent.
    events = [_write(0, 0x100, 1), _read(1, 0x120, 0)]
    assert check_history(events, SHIFT) == []


def test_non_monotonic_write_versions_are_corrupt():
    events = [_write(0, 0x100, 2), _write(1, 0x140, 2)]
    problems = check_history(events, SHIFT)
    assert any("corrupt history" in p for p in problems)


def test_other_event_kinds_are_ignored():
    events = [{"seq": 0, "kind": "migrate", "gpage": 1,
               "old_home": 0, "new_home": 1},
              _read(1, 0x100, 0)]
    assert check_history(events, SHIFT) == []
