"""Mutation self-tests: the conformance checkers are not vacuous.

Each mutation flips one protocol transition; the litmus suite must
catch every one of them — and must pass again the moment the mutation
is lifted.  This is the evidence that a green ``repro verify`` actually
constrains the protocol implementation.
"""

import pytest

from repro.core.controller import CoherenceController
from repro.core.finegrain import FineGrainTags
from repro.sim.machine import Machine
from repro.verify import (MUTATIONS, apply_mutation, run_litmus, run_suite,
                          suite_by_name)

pytestmark = pytest.mark.verify


@pytest.mark.parametrize("name", sorted(MUTATIONS))
def test_every_mutation_is_caught_by_the_suite(name):
    with apply_mutation(name):
        result = run_suite()
    assert not result.ok, ("mutation %r survived the litmus suite — "
                           "the checkers are vacuous for it" % name)


def test_suite_is_green_without_mutations():
    assert run_suite().ok


def test_original_methods_are_restored_even_on_error():
    original = CoherenceController.handle_invalidate
    with pytest.raises(RuntimeError, match="boom"):
        with apply_mutation("skip-client-invalidate"):
            assert CoherenceController.handle_invalidate is not original
            raise RuntimeError("boom")
    assert CoherenceController.handle_invalidate is original
    original_set = FineGrainTags.set
    with apply_mutation("skip-tag-invalidate"):
        assert FineGrainTags.set is not original_set
    assert FineGrainTags.set is original_set


def test_unknown_mutation_name_is_rejected():
    with pytest.raises(ValueError, match="unknown mutation"):
        with apply_mutation("skip-everything"):
            pass


def test_value_checker_alone_catches_skipped_client_invalidate():
    # Run with the barrier invariant walks disabled: the stale reads
    # themselves must be enough to flag the bug.
    with apply_mutation("skip-client-invalidate"):
        result = run_litmus(suite_by_name()["mp_scoma"],
                            check_invariants=False)
    assert any("stale read" in v for v in result.violations), \
        result.violations


def test_invariant_walk_catches_skipped_tag_invalidate():
    with apply_mutation("skip-tag-invalidate"):
        result = run_suite(tests=(suite_by_name()["mp_scoma"],))
    assert any("tag" in v or "HOME_EXCL" in v or "CLIENT_EXCL" in v
               for r in result.failures for v in r.violations), \
        result.summary()


def test_sibling_mutation_needs_the_sibling_geometry():
    # On one-CPU-per-node tests _invalidate_siblings is a no-op anyway;
    # only the sibling-geometry tests give the mutation something to
    # break — evidence the suite's geometry axis is load-bearing.
    single = tuple(t for t in (suite_by_name()["mp_scoma"],
                               suite_by_name()["sb_scoma"]))
    sibling = (suite_by_name()["sibling_mp_scoma"],)
    with apply_mutation("skip-sibling-invalidate"):
        assert run_suite(tests=single).ok
        assert not run_suite(tests=sibling).ok


def test_mutated_machine_really_skips_the_invalidation():
    # Sanity-check the mutation mechanism itself at the machine level.
    test = suite_by_name()["mp_scoma"]
    with apply_mutation("skip-client-invalidate"):
        machine = Machine(test.build_config(), policy=test.policy)
        assert machine.nodes[0].controller.handle_invalidate.__name__ \
            == "_handle_invalidate_no_drop"
