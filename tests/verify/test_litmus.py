"""Tests for the litmus DSL and the bundled suite (repro.verify)."""

import pytest

from repro.sim.engine import SchedulePerturbation
from repro.sim.machine import Machine
from repro.verify import (LITMUS_SUITE, LitmusTest, Thread, bounded_schedules,
                          delay, ld, run_litmus, run_suite, st, suite_by_name)
from repro.verify.litmus import LitmusWorkload

pytestmark = pytest.mark.verify


# -- DSL --------------------------------------------------------------------

def test_store_values_must_be_positive():
    with pytest.raises(ValueError, match="positive"):
        st("x", 0)


def test_unknown_location_is_rejected():
    with pytest.raises(ValueError, match="unknown location"):
        LitmusTest(name="bad", description="", locations=("x",),
                   threads=(Thread(ld("y")),))


def test_colliding_placement_is_rejected():
    with pytest.raises(ValueError, match="share a CPU"):
        LitmusTest(name="bad", description="", locations=("x",),
                   threads=(Thread(ld("x")), Thread(ld("x"))),
                   placement=(0, 0))


def test_placement_must_fit_the_machine():
    with pytest.raises(ValueError, match="exceeds"):
        LitmusTest(name="bad", description="", locations=("x",),
                   threads=(Thread(ld("x")),), num_nodes=2,
                   cpus_per_node=1, placement=(5,))


def test_default_placement_spreads_one_thread_per_node():
    test = suite_by_name()["iriw_scoma"]
    cpus = test.cpu_of_thread()
    nodes = [c // test.cpus_per_node for c in cpus]
    assert len(set(nodes)) == len(test.threads)


def test_thread_introspection():
    thread = Thread(st("x", 1), delay(10), ld("x"), ld("x"), st("x", 2))
    assert thread.store_values == (1, 2)
    assert thread.num_loads == 2


# -- the bundled suite ------------------------------------------------------

def test_suite_has_the_documented_coverage():
    names = {t.name for t in LITMUS_SUITE}
    assert len(LITMUS_SUITE) >= 15
    assert {"mp_scoma", "mp_lanuma", "mp_ccnuma", "sb_scoma",
            "iriw_scoma", "sibling_mp_scoma", "migration_race_scoma",
            "pageout_race_scoma"} <= names
    assert len(names) == len(LITMUS_SUITE)


def test_full_suite_passes_under_bounded_exploration():
    result = run_suite()
    assert result.ok, result.summary()
    per_test = len(bounded_schedules(4))
    assert len(result.results) >= len(LITMUS_SUITE) * per_test // 2


def test_mp_registers_are_sequentially_consistent():
    result = run_litmus(suite_by_name()["mp_scoma"])
    assert result.ok
    # Thread 1 ran after warm-up: flag/x each 0 or 1, never (1, 0).
    assert result.registers[1] in ((0, 0), (0, 1), (1, 1))


def test_schedules_change_timing_but_not_outcomes():
    test = suite_by_name()["sb_scoma"]
    machines = []
    for schedule in (None, SchedulePerturbation(cpu_offsets=(0, 977),
                                                net_jitter=(55,))):
        machine = Machine(test.build_config(), policy=test.policy,
                          schedule=schedule)
        machine.run(LitmusWorkload(test))
        machines.append(machine)
    assert (machines[0].stats.execution_cycles
            != machines[1].stats.execution_cycles)
    assert run_litmus(test, SchedulePerturbation(
        cpu_offsets=(0, 977), net_jitter=(55,))).ok


def test_migration_tests_actually_migrate():
    test = suite_by_name()["migration_race_scoma"]
    machine = Machine(test.build_config(), policy=test.policy)
    machine.run(LitmusWorkload(test))
    assert machine.migration.migrations > 0


def test_pageout_tests_actually_page_out():
    test = suite_by_name()["pageout_race_scoma"]
    machine = Machine(test.build_config(), policy=test.policy)
    machine.run(LitmusWorkload(test))
    assert sum(n.stats.client_page_outs for n in machine.nodes) > 0


def test_bounded_schedules_are_deterministic_and_start_trivial():
    first, second = bounded_schedules(4), bounded_schedules(4)
    assert [s.describe() for s in first] == [s.describe() for s in second]
    assert first[0].is_trivial
    assert any(not s.is_trivial for s in first)


def test_result_describe_mentions_test_and_schedule():
    result = run_litmus(suite_by_name()["mp_scoma"],
                        SchedulePerturbation(net_jitter=(42,)))
    text = result.describe()
    assert "mp_scoma" in text and "42" in text and "ok" in text
