"""Barrier-release invariant checks and the hand-corruption test."""

import pytest

from repro.core.directory import DirState
from repro.sim.invariants import (InvariantViolation, check_machine,
                                  install_barrier_checks)
from repro.sim.machine import Machine
from repro.verify import suite_by_name
from repro.verify.litmus import LitmusWorkload

pytestmark = pytest.mark.verify


def _machine(name="mp_scoma"):
    test = suite_by_name()[name]
    return Machine(test.build_config(), policy=test.policy), test


def _corrupt_one_directory_entry(machine) -> str:
    """Flip a SHARED directory line to HOME_EXCL while clients still
    hold copies; returns a description of what was corrupted."""
    for home in machine.nodes:
        for page in home.directory.pages():
            for lip, dl in enumerate(page.lines):
                if dl.state == DirState.SHARED and dl.sharers:
                    dl.state = DirState.HOME_EXCL
                    return "gpage %d line %d" % (page.gpage, lip)
    raise AssertionError("no shared directory line to corrupt")


def test_clean_run_passes_barrier_checks():
    machine, test = _machine()
    install_barrier_checks(machine)
    machine.run(LitmusWorkload(test))
    assert check_machine(machine) == []


def test_hand_corrupted_directory_entry_is_reported():
    machine, test = _machine()
    install_barrier_checks(machine)
    inner = machine._barrier_hook
    corrupted = []

    def corrupt_then_check(release_time):
        # After the warm-up barrier every node holds shared copies, so
        # there is a SHARED line to corrupt before the walk runs.
        if not corrupted:
            corrupted.append(_corrupt_one_directory_entry(machine))
        inner(release_time)

    machine.on_barrier_release(corrupt_then_check)
    with pytest.raises(InvariantViolation) as excinfo:
        machine.run(LitmusWorkload(test))
    assert corrupted
    assert any("HOME_EXCL but clients" in p for p in excinfo.value.problems)
    assert "cycle" in str(excinfo.value)
    assert excinfo.value.when > 0


def test_violation_message_previews_at_most_three_problems():
    exc = InvariantViolation(["p%d" % i for i in range(5)], when=7)
    assert exc.problems == ["p0", "p1", "p2", "p3", "p4"]
    assert "(5 total)" in str(exc)
    assert "p3" not in str(exc).replace("(5 total)", "")


def test_hook_uninstalls_with_none():
    machine, _test = _machine()
    install_barrier_checks(machine)
    assert machine._barrier_hook is not None
    machine.on_barrier_release(None)
    assert machine._barrier_hook is None
