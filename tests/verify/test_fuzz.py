"""Tests for the schedule fuzzer and shrinker (repro.verify.fuzz)."""

import random

import pytest

from repro.sim.engine import SchedulePerturbation
from repro.verify import apply_mutation, fuzz, shrink, suite_by_name
from repro.verify.runner import run_litmus

pytestmark = pytest.mark.verify


def test_clean_fuzz_run_finds_nothing():
    assert fuzz(rounds=30, seed=0) == []


def test_fuzz_is_deterministic_per_seed():
    tests = (suite_by_name()["mp_scoma"], suite_by_name()["sb_scoma"])
    with apply_mutation("skip-sibling-invalidate"):
        sibling = (suite_by_name()["sibling_mp_scoma"],)
        first = fuzz(rounds=4, seed=7, tests=sibling)
        second = fuzz(rounds=4, seed=7, tests=sibling)
    assert [f.schedule.describe() for f in first] \
        == [f.schedule.describe() for f in second]
    assert [f.round for f in first] == [f.round for f in second]
    # And a clean config is deterministic too (no failures both times).
    assert fuzz(rounds=6, seed=3, tests=tests) \
        == fuzz(rounds=6, seed=3, tests=tests)


def test_random_schedules_respect_bounds():
    rng = random.Random(1)
    for _ in range(20):
        schedule = SchedulePerturbation.random(rng, 4, max_cpu_skew=100,
                                               max_net_jitter=10)
        assert all(0 <= x <= 100 for x in schedule.cpu_offsets)
        assert all(0 <= x <= 10 for x in schedule.net_jitter)
        assert len(schedule.cpu_offsets) == 4


def test_shrink_returns_flaky_schedule_unchanged():
    test = suite_by_name()["mp_scoma"]
    schedule = SchedulePerturbation(cpu_offsets=(100, 200, 300, 400),
                                    net_jitter=(50, 60))
    assert shrink(test, schedule) is schedule  # does not fail at all


def test_shrink_minimizes_a_reproducing_schedule():
    test = suite_by_name()["sibling_mp_scoma"]
    schedule = SchedulePerturbation(
        cpu_offsets=(1234, 567, 890, 1111),
        net_jitter=(13, 170, 44, 91, 7, 120))
    with apply_mutation("skip-sibling-invalidate"):
        assert not run_litmus(test, schedule).ok
        shrunk = shrink(test, schedule)
        # The failure is schedule-independent, so shrinking must reach
        # the empty (all-zero) schedule — the minimal reproducer.
        assert shrunk.is_trivial
        assert not run_litmus(test, shrunk).ok
    # Outside the mutation the shrunk schedule is a passing schedule.
    assert run_litmus(test, shrunk).ok


def test_fuzz_failures_carry_shrunk_reproducers():
    with apply_mutation("skip-sibling-invalidate"):
        failures = fuzz(rounds=2, seed=0,
                        tests=(suite_by_name()["sibling_mp_scoma"],))
        assert failures
        for failure in failures:
            assert failure.violations
            assert sum(failure.shrunk.cpu_offsets) \
                + sum(failure.shrunk.net_jitter) \
                <= sum(failure.schedule.cpu_offsets) \
                + sum(failure.schedule.net_jitter)
            assert not run_litmus(failure.test, failure.shrunk).ok
            assert failure.test.name in failure.describe()
